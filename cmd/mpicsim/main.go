// Command mpicsim runs one noise-resilient simulation and prints its
// outcome: which scheme, over which topology and workload, under which
// adversary, and whether every party decoded the correct output.
//
// The string flags are parsed through the library's open registries, so
// externally registered topologies, workloads, and noise models work
// here too; the run itself goes through mpic.Runner.
//
// Example:
//
//	mpicsim -topology line -n 6 -scheme A -noise random -rate 0.002
//
// With -trials above 1 the scenario is re-run at that many consecutive
// seeds through the streaming grid engine (one line per trial as it
// completes, then the aggregate); -workers bounds the concurrent trials.
// Results are bit-identical at any worker count. -checkpoint makes the
// trial grid a durable session: completed trials persist to the named
// JSON file (mpic.FileGridStore) and a re-run resumes the missing ones;
// -observe streams the grid's fine-grained progress (trial starts,
// per-iteration ticks) to stderr through mpic.NewProgressLog; -retries
// re-runs a failed trial up to that many extra times and then
// quarantines it so the rest of the batch still completes (partial
// success exits with code 3, see main).
//
//	mpicsim -topology line -n 6 -noise random -rate 0.002 -trials 20 -workers 4 \
//	    -checkpoint trials.ckpt.json -observe -retries 2
//
// The -delay flag switches the network to the virtual-time executor
// under a registered delay model (name[:param], e.g. lognormal:0.3);
// -netfaults layers a deterministic network-fault schedule on top
// (outages, delay spikes, stragglers, crash-stop parties) as
// comma-separated k=v pairs. Timing faults surface in the result as
// insdel noise plus virtual-time metrics (makespan, late symbols,
// per-link delay quantiles):
//
//	mpicsim -n 6 -noise random -rate 0.002 -delay lognormal:0.25 \
//	    -netfaults outage=0.01,stragglers=1,crashes=1
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpic"
	"mpic/internal/gridspec"
	"mpic/internal/trace"
)

// Exit codes: 0 — every trial succeeded; 3 — the grid finished but some
// trials were quarantined after exhausting their -retries budget
// (partial success: the printed aggregate covers the healthy trials);
// 1 — hard failure (bad flags, a run error in fail-fast mode, an
// unusable checkpoint).
func main() {
	err := run(os.Stdout, os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "mpicsim:", err)
	var gf *mpic.GridFailure
	if errors.As(err, &gf) {
		os.Exit(3)
	}
	os.Exit(1)
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mpicsim", flag.ContinueOnError)
	var (
		topology = fs.String("topology", "", "topology: "+strings.Join(mpic.TopologyNames(), "|")+" (default: the workload's)")
		n        = fs.Int("n", 6, "number of parties")
		workload = fs.String("workload", "random", "workload: "+strings.Join(mpic.WorkloadNames(), "|"))
		rounds   = fs.Int("rounds", 0, "workload rounds (0 = default)")
		scheme   = fs.String("scheme", "A", "coding scheme: 1|A|B|C")
		noise    = fs.String("noise", "none", "noise: "+strings.Join(mpic.NoiseNames(), "|"))
		rate     = fs.Float64("rate", 0, "noise rate (fraction of total communication)")
		seed     = fs.Int64("seed", 1, "random seed")
		iters    = fs.Int("iterfactor", 100, "iteration budget multiplier (paper: 100)")
		faithful = fs.Bool("faithful", false, "run all iterations (no early stop)")
		parallel = fs.Bool("parallel", false, "use the concurrent network executor")
		hashmode = fs.String("hashmode", "", "prefix-hash seed discipline: epoch|legacy|incremental (default epoch — checkpointed hashing with the seed block refreshed every -epoch-refresh iterations)")
		epochR   = fs.Int("epoch-refresh", 0, "epoch mode's seed-refresh interval R in iterations (0 = default)")
		increm   = fs.Bool("incremental-hash", false, "deprecated alias for -hashmode incremental: checkpointed prefix hashing with a never-refreshed seed block")
		observe  = fs.Bool("observe", false, "stream per-iteration progress to stderr (an mpic.Observer sink)")
		obsEvery = fs.Int("observe-every", 0, "with -observe and -trials > 1: subsample iteration lines (print every k-th, with percent + ETA; 0 = every iteration, -1 = auto ~5% of the budget)")
		delay    = fs.String("delay", "", "delay model name[:param] ("+strings.Join(mpic.DelayNames(), "|")+"; empty or 'none' = lockstep)")
		netflt   = fs.String("netfaults", "", "network-fault schedule, comma-separated k=v: outage, outage-len, spike, spike-delay, stragglers, straggler-delay, crashes, crash-len, seed")
		asJSON   = fs.Bool("json", false, "print the result as JSON")
		doTrace  = fs.Bool("trace", false, "print the per-iteration potential trace")
		trials   = fs.Int("trials", 1, "independent seeds to run (above 1: streamed through the grid engine)")
		workers  = fs.Int("workers", 0, "concurrent trials when -trials > 1 (0 = GOMAXPROCS)")
		ckpt     = fs.String("checkpoint", "", "with -trials > 1: resumable JSON checkpoint file for the trial grid")
		retries  = fs.Int("retries", 0, "with -trials > 1: re-run a failed trial up to this many extra times, then quarantine it and finish the batch (exit code 3 on partial success)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The flag values resolve through the shared spec parser — the same
	// struct, field for field, that mpicserve accepts as a JSON body.
	sc, err := gridspec.Scenario{
		Topology:        *topology,
		N:               *n,
		Workload:        *workload,
		Rounds:          *rounds,
		Scheme:          *scheme,
		Noise:           *noise,
		Rate:            *rate,
		Seed:            *seed,
		IterFactor:      *iters,
		Faithful:        *faithful,
		Parallel:        *parallel,
		HashMode:        *hashmode,
		EpochRefresh:    *epochR,
		IncrementalHash: *increm,
		Delay:           *delay,
		NetFaults:       *netflt,
	}.Build()
	if err != nil {
		return err
	}
	runner := mpic.NewRunner()
	defer runner.Close()
	if *trials > 1 {
		if *doTrace {
			return fmt.Errorf("-trace reads one run's trajectory; it does not combine with -trials %d", *trials)
		}
		if *retries < 0 {
			return fmt.Errorf("-retries must be non-negative, got %d", *retries)
		}
		return runTrials(w, runner, sc, trialOpts{
			trials: *trials, workers: *workers, retries: *retries,
			checkpoint: *ckpt, observe: *observe, obsEvery: *obsEvery, asJSON: *asJSON,
		})
	}
	if *ckpt != "" {
		return fmt.Errorf("-checkpoint resumes a trial grid; it needs -trials > 1")
	}
	if *retries != 0 {
		return fmt.Errorf("-retries applies to a trial grid; it needs -trials > 1")
	}
	if *observe {
		sc.Observers = append(sc.Observers, mpic.NewIterationLog(os.Stderr))
	}
	res, err := runner.Run(context.Background(), sc)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(w, res)
	}
	printHuman(w, sc, res)
	if *doTrace {
		printTrace(w, res)
	}
	return nil
}

// trialOpts carries the multi-seed grid mode's flags.
type trialOpts struct {
	trials, workers int
	retries         int
	checkpoint      string
	observe, asJSON bool
	// obsEvery subsamples the -observe iteration stream: print every k-th
	// line (with percent done and an ETA), -1 picks ~5% of the budget.
	obsEvery int
}

// runTrials re-runs the scenario at consecutive seeds through the
// streaming grid engine: one single-trial cell per seed, a line per
// trial the moment it completes, then the aggregate. With a checkpoint
// file the grid is a durable session — completed trials are restored
// instead of re-run; with -observe the engine's progress stream narrates
// every trial on stderr.
func runTrials(w io.Writer, runner *mpic.Runner, sc mpic.Scenario, opts trialOpts) error {
	cells := make([]mpic.GridCell, opts.trials)
	for i := range cells {
		s := sc
		s.Seed = sc.Seed + int64(i)
		cells[i] = mpic.GridCell{Scenario: s, Trials: 1}
	}
	grid := mpic.Grid{Cells: cells, Workers: opts.workers}
	if opts.retries > 0 {
		// With a retry budget the batch runs in quarantine mode: a trial
		// that keeps failing is reported and skipped instead of killing
		// the batch, and main maps the resulting *mpic.GridFailure to
		// exit code 3.
		grid.Retry = mpic.RetryPolicy{MaxAttempts: opts.retries + 1, JitterSeed: sc.Seed}
		grid.OnCellError = mpic.QuarantineCells
	}
	if opts.checkpoint != "" {
		// The default spec (Grid.Fingerprint) covers the flags that shape
		// the cells — topology, workload, noise, seed, budget — so a
		// checkpoint from a different invocation is rejected.
		grid.Store = mpic.NewFileGridStore(opts.checkpoint)
	}
	if opts.observe {
		if opts.obsEvery != 0 {
			grid.Progress = mpic.NewThrottledProgressLog(os.Stderr, opts.obsEvery)
		} else {
			grid.Progress = mpic.NewProgressLog(os.Stderr)
		}
	}
	agg := mpic.SweepCell{}
	restored, failed := 0, 0
	err := runner.RunGrid(context.Background(), grid, func(res mpic.GridCellResult) {
		if res.Err != nil {
			// A quarantined trial carries no aggregate — report it and
			// keep it out of the totals.
			failed++
			if !opts.asJSON {
				fmt.Fprintf(w, "trial %3d (seed %d): ERROR after %d attempt(s): %v\n",
					res.Index, sc.Seed+int64(res.Index), res.Attempts, res.Err)
			}
			return
		}
		c := res.Cell
		agg.Merge(c)
		if res.Restored {
			restored++
		}
		if !opts.asJSON {
			status := "SUCCESS"
			if c.Successes < c.Trials {
				status = "FAILURE"
			}
			fmt.Fprintf(w, "trial %3d (seed %d): %s blowup=%.2f iterations=%.0f corruptions=%d\n",
				res.Index, sc.Seed+int64(res.Index), status, c.MeanBlowup(), c.MeanIterations(), c.Corruptions)
		}
	})
	var gridFail *mpic.GridFailure
	if err != nil && !errors.As(err, &gridFail) {
		return err
	}
	if opts.asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(map[string]interface{}{
			"trials":         agg.Trials,
			"successes":      agg.Successes,
			"successRate":    agg.SuccessRate(),
			"meanBlowup":     agg.MeanBlowup(),
			"meanIterations": agg.MeanIterations(),
			"corruptions":    agg.Corruptions,
			"hashCollisions": agg.Collisions,
			"restoredTrials": restored,
			"failedTrials":   failed,
		}); encErr != nil {
			return encErr
		}
		return err
	}
	fmt.Fprintf(w, "aggregate: %d/%d succeeded, mean blowup %.2f, mean iterations %.0f, %d corruptions\n",
		agg.Successes, agg.Trials, agg.MeanBlowup(), agg.MeanIterations(), agg.Corruptions)
	if restored > 0 {
		fmt.Fprintf(w, "restored %d of %d trials from %s\n", restored, opts.trials, opts.checkpoint)
	}
	if failed > 0 {
		fmt.Fprintf(w, "quarantined %d of %d trials (excluded from the aggregate)\n", failed, opts.trials)
	}
	return err
}

// printTrace dumps the oracle's per-iteration snapshots: the agreed
// prefix G*, the divergence B*, and how many links were repairing.
func printTrace(w io.Writer, res *mpic.Result) {
	fmt.Fprintln(w, "  iteration trace (G* / B* / links in meeting points):")
	for _, snap := range res.Potential {
		marker := ""
		if snap.BStar > 0 {
			marker = "  <- divergence"
		}
		fmt.Fprintf(w, "    iter %4d: G*=%-4d B*=%-3d mp=%d%s\n",
			snap.Iteration, snap.GStar, snap.BStar, snap.MeetingLinks, marker)
	}
}

func printHuman(w io.Writer, sc mpic.Scenario, res *mpic.Result) {
	status := "SUCCESS"
	if !res.Success {
		status = fmt.Sprintf("FAILURE (%d parties wrong)", res.WrongParties)
	}
	workload := sc.Workload.Name
	if workload == "" {
		workload = "random"
	}
	fmt.Fprintf(w, "%s — %s over %s(n=%d), workload %s\n",
		status, sc.Scheme, sc.Topology.Name, sc.Topology.N, workload)
	fmt.Fprintf(w, "  protocol:       %d chunks, CC(Π) = %d bits\n", res.NumChunks, res.CCProtocol)
	fmt.Fprintf(w, "  simulation:     %d iterations, %d rounds, G* = %d chunks\n",
		res.Iterations, res.Metrics.Rounds, res.GStar)
	fmt.Fprintf(w, "  communication:  %d bits (blowup %.2fx)\n", res.Metrics.CC, res.Blowup)
	fmt.Fprintf(w, "  noise:          %d corruptions (µ = %.5f), %d oracle hash collisions\n",
		res.Metrics.TotalCorruptions(), res.Metrics.NoiseFraction(), res.Metrics.HashCollisions)
	if n := res.Metrics.Net; n != nil {
		fmt.Fprintf(w, "  network:        makespan %.1f rounds, %d late (%d redelivered, %d dropped), %d erasures, worst p99 delay %.2f\n",
			n.Makespan, n.LateSymbols, n.LateDelivered, n.LateDropped, n.Erasures, n.MaxP99())
	}
	fmt.Fprintf(w, "  per phase CC:  ")
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		fmt.Fprintf(w, " %s=%d", ph, res.Metrics.CCPhase[ph])
	}
	fmt.Fprintln(w)
	if res.BrokenSeedLinks > 0 {
		fmt.Fprintf(w, "  broken seeds:   %d link endpoints\n", res.BrokenSeedLinks)
	}
}

func printJSON(w io.Writer, res *mpic.Result) error {
	out := map[string]interface{}{
		"success":        res.Success,
		"chunks":         res.NumChunks,
		"ccProtocol":     res.CCProtocol,
		"cc":             res.Metrics.CC,
		"blowup":         res.Blowup,
		"iterations":     res.Iterations,
		"rounds":         res.Metrics.Rounds,
		"gStar":          res.GStar,
		"corruptions":    res.Metrics.TotalCorruptions(),
		"noiseFraction":  res.Metrics.NoiseFraction(),
		"hashCollisions": res.Metrics.HashCollisions,
		"wrongParties":   res.WrongParties,
	}
	if n := res.Metrics.Net; n != nil {
		out["makespan"] = n.Makespan
		out["lateSymbols"] = n.LateSymbols
		out["lateDelivered"] = n.LateDelivered
		out["lateDropped"] = n.LateDropped
		out["erasures"] = n.Erasures
		out["worstP99Delay"] = n.MaxP99()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
