package main

import (
	"testing"

	"mpic"
)

func TestRunBasic(t *testing.T) {
	err := run([]string{"-topology", "line", "-n", "4", "-scheme", "A",
		"-iterfactor", "20", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	err := run([]string{"-n", "4", "-scheme", "1", "-iterfactor", "10", "-json"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunNoisy(t *testing.T) {
	err := run([]string{"-n", "4", "-scheme", "B", "-noise", "adaptive",
		"-rate", "0.0005", "-iterfactor", "40"})
	if err != nil {
		t.Fatal(err)
	}
}

// Fixed-topology workloads pick their own topology when -topology is
// left at its "" default, and reject a conflicting explicit one.
func TestRunFixedTopologyWorkload(t *testing.T) {
	if err := run([]string{"-workload", "token-ring", "-n", "5", "-iterfactor", "20", "-seed", "5"}); err != nil {
		t.Fatalf("token-ring with default topology: %v", err)
	}
	if err := run([]string{"-workload", "token-ring", "-topology", "line", "-n", "5"}); err == nil {
		t.Error("conflicting explicit topology accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scheme", "Z"}); err == nil {
		t.Error("bad scheme accepted")
	}
	if err := run([]string{"-topology", "moebius"}); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestParseScheme(t *testing.T) {
	for _, s := range []string{"1", "A", "a", "B", "b", "C", "c"} {
		if _, err := mpic.ParseScheme(s); err != nil {
			t.Errorf("ParseScheme(%q): %v", s, err)
		}
	}
	if _, err := mpic.ParseScheme("D"); err == nil {
		t.Error("ParseScheme accepted D")
	}
}

// TestRunTrialsGrid exercises the multi-seed grid mode: trials stream
// through the engine (any worker count), -trace is rejected, and the
// JSON aggregate path works.
func TestRunTrialsGrid(t *testing.T) {
	if err := run([]string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-trials", "3", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-trials", "2", "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topology", "line", "-n", "4", "-trials", "2", "-trace"}); err == nil {
		t.Error("-trace with -trials accepted")
	}
}
