package main

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpic"
)

func TestRunBasic(t *testing.T) {
	err := run(io.Discard, []string{"-topology", "line", "-n", "4", "-scheme", "A",
		"-iterfactor", "20", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	err := run(io.Discard, []string{"-n", "4", "-scheme", "1", "-iterfactor", "10", "-json"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunNoisy(t *testing.T) {
	err := run(io.Discard, []string{"-n", "4", "-scheme", "B", "-noise", "adaptive",
		"-rate", "0.0005", "-iterfactor", "40"})
	if err != nil {
		t.Fatal(err)
	}
}

// Fixed-topology workloads pick their own topology when -topology is
// left at its "" default, and reject a conflicting explicit one.
func TestRunFixedTopologyWorkload(t *testing.T) {
	if err := run(io.Discard, []string{"-workload", "token-ring", "-n", "5", "-iterfactor", "20", "-seed", "5"}); err != nil {
		t.Fatalf("token-ring with default topology: %v", err)
	}
	if err := run(io.Discard, []string{"-workload", "token-ring", "-topology", "line", "-n", "5"}); err == nil {
		t.Error("conflicting explicit topology accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(io.Discard, []string{"-scheme", "Z"}); err == nil {
		t.Error("bad scheme accepted")
	}
	if err := run(io.Discard, []string{"-topology", "moebius"}); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run(io.Discard, []string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestParseScheme(t *testing.T) {
	for _, s := range []string{"1", "A", "a", "B", "b", "C", "c"} {
		if _, err := mpic.ParseScheme(s); err != nil {
			t.Errorf("ParseScheme(%q): %v", s, err)
		}
	}
	if _, err := mpic.ParseScheme("D"); err == nil {
		t.Error("ParseScheme accepted D")
	}
}

// TestRunTrialsGrid exercises the multi-seed grid mode: trials stream
// through the engine (any worker count), -trace is rejected, and the
// JSON aggregate path works.
func TestRunTrialsGrid(t *testing.T) {
	if err := run(io.Discard, []string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-trials", "3", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-trials", "2", "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-topology", "line", "-n", "4", "-trials", "2", "-trace"}); err == nil {
		t.Error("-trace with -trials accepted")
	}
}

// TestRunTrialsCheckpointResume pins the durable trial grid: a full run
// writes the session file, a truncated session resumes the missing
// trials, and the resumed output is line-identical to the fresh run.
func TestRunTrialsCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "trials.ckpt.json")
	// Workers pinned to 1 so completion order (the printed line order)
	// is definition order in both runs; the cells themselves are
	// bit-identical at any worker count.
	args := []string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-trials", "3", "-workers", "1", "-checkpoint", ck}

	var fresh strings.Builder
	if err := run(&fresh, args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	var state struct {
		Version int
		Spec    string
		Cells   []json.RawMessage
	}
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	if state.Version != 3 || state.Spec == "" || len(state.Cells) != 3 {
		t.Fatalf("checkpoint state = version %d, spec %q, %d cells; want v3 with 3 cells",
			state.Version, state.Spec, len(state.Cells))
	}

	// Simulate an interruption: drop the last trial and resume. The
	// truncation goes through the store API so the rewritten file carries
	// a valid checksum — a hand-edited file would (correctly) be treated
	// as corrupt.
	store := mpic.NewFileGridStore(ck)
	cells, err := store.Load(state.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(state.Spec, cells[:2]); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := run(&resumed, args); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !strings.Contains(resumed.String(), "restored 2 of 3 trials") {
		t.Fatalf("resume output missing restore note:\n%s", resumed.String())
	}
	// Trial lines and the aggregate must be bit-identical; the resumed
	// run then appends its restore note.
	freshLines := strings.Split(strings.TrimRight(fresh.String(), "\n"), "\n")
	resumedLines := strings.Split(strings.TrimRight(resumed.String(), "\n"), "\n")
	if len(resumedLines) != len(freshLines)+1 {
		t.Fatalf("resumed run printed %d lines, fresh %d (want fresh+1)", len(resumedLines), len(freshLines))
	}
	for i, line := range freshLines {
		if resumedLines[i] != line {
			t.Fatalf("line %d differs after resume:\nfresh:   %q\nresumed: %q", i, line, resumedLines[i])
		}
	}

	// A different grid (another seed) must reject the session file.
	other := []string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-trials", "3", "-seed", "9", "-checkpoint", ck}
	if err := run(io.Discard, other); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("mismatched checkpoint accepted: %v", err)
	}

	// -checkpoint without a trial grid has nothing to resume.
	if err := run(io.Discard, []string{"-topology", "line", "-n", "4", "-checkpoint", ck}); err == nil {
		t.Error("-checkpoint without -trials accepted")
	}
}

// TestRunTrialsQuarantineOutput drives the failure path through the
// CLI sink: a registered noise family whose wiring always errors makes
// every trial fail, the sink prints ERROR lines and the quarantine
// note, and run returns the *mpic.GridFailure that main maps to exit
// code 3.
func TestRunTrialsQuarantineOutput(t *testing.T) {
	if err := mpic.RegisterNoise("sim-test-failwire", func(rate float64) mpic.NoiseSpec {
		return mpic.NoiseFunc("sim-test-failwire", func(mpic.NoiseEnv) (mpic.WiredNoise, error) {
			return mpic.WiredNoise{}, errors.New("injected wiring failure")
		})
	}); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run(&out, []string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-noise", "sim-test-failwire", "-rate", "0.001",
		"-trials", "2", "-retries", "1"})
	var gf *mpic.GridFailure
	if !errors.As(err, &gf) {
		t.Fatalf("quarantined grid returned %v, want *mpic.GridFailure", err)
	}
	if len(gf.Report.Failed) != 2 {
		t.Fatalf("report lists %d failed trials, want 2", len(gf.Report.Failed))
	}
	for _, want := range []string{
		"ERROR after 2 attempt(s)",
		"injected wiring failure",
		"quarantined 2 of 2 trials",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}

	// The JSON aggregate must carry the failure count and still be valid
	// JSON with every trial quarantined.
	var jsonOut strings.Builder
	err = run(&jsonOut, []string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-noise", "sim-test-failwire", "-rate", "0.001",
		"-trials", "2", "-retries", "1", "-json"})
	if !errors.As(err, &gf) {
		t.Fatalf("quarantined JSON grid returned %v, want *mpic.GridFailure", err)
	}
	var agg map[string]interface{}
	if err := json.Unmarshal([]byte(jsonOut.String()), &agg); err != nil {
		t.Fatalf("all-quarantined aggregate is not valid JSON: %v\n%s", err, jsonOut.String())
	}
	if agg["failedTrials"] != 2.0 {
		t.Fatalf("failedTrials = %v, want 2", agg["failedTrials"])
	}
}

// TestRunTrialsRetries pins the -retries knob: valid on a trial grid
// (where a healthy run is unaffected), rejected without one, and
// rejected when negative.
func TestRunTrialsRetries(t *testing.T) {
	if err := run(io.Discard, []string{"-topology", "line", "-n", "4", "-iterfactor", "10",
		"-trials", "2", "-retries", "2"}); err != nil {
		t.Fatalf("healthy grid with -retries: %v", err)
	}
	if err := run(io.Discard, []string{"-topology", "line", "-n", "4", "-retries", "2"}); err == nil ||
		!strings.Contains(err.Error(), "-trials") {
		t.Errorf("-retries without -trials: got %v", err)
	}
	if err := run(io.Discard, []string{"-topology", "line", "-n", "4",
		"-trials", "2", "-retries", "-1"}); err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Errorf("negative -retries: got %v", err)
	}
}
