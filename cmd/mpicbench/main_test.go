package main

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpic"
	"mpic/internal/experiments"
	"mpic/internal/gridspec"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID     string
		Header []string
		Rows   [][]string
	}
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatalf("invalid JSON artefact: %v", err)
	}
	if len(tables) != 1 || tables[0].ID == "" || len(tables[0].Rows) == 0 {
		t.Fatalf("JSON artefact incomplete: %+v", tables)
	}
}

func TestCompareSpeedupsAndRegressions(t *testing.T) {
	mk := func(id string, ms float64) *experiments.Table {
		return &experiments.Table{ID: id, ElapsedMS: ms}
	}
	write := func(tables []*experiments.Table) string {
		data, err := json.Marshal(tables)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "old.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Faster or equal: fine. Missing and legacy (no timing) entries: fine.
	old := write([]*experiments.Table{mk("E-1", 200), mk("E-2", 100), mk("E-3", 0)})
	now := []*experiments.Table{mk("E-1", 100), mk("E-2", 104), mk("E-3", 80), mk("E-4", 5)}
	var out strings.Builder
	if err := compareAgainst(&out, old, now); err != nil {
		t.Fatalf("clean comparison failed: %v", err)
	}
	for _, want := range []string{"2.00×", "n/a", "new"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("comparison table missing %q:\n%s", want, out.String())
		}
	}
	// >10% and past the noise guard: must fail.
	bad := []*experiments.Table{mk("E-1", 260), mk("E-2", 100)}
	if err := compareAgainst(io.Discard, old, bad); err == nil {
		t.Fatal("60ms/30% regression not reported")
	}
	// >10% but within the absolute noise guard: must pass. (E-1 and E-3
	// are deliberately absent from the run here, so this also exercises
	// the lost-coverage arm below before asserting it fails.)
	noisy := []*experiments.Table{mk("E-1", 210), mk("E-2", 112), mk("E-3", 1)}
	if err := compareAgainst(io.Discard, old, noisy); err != nil {
		t.Fatalf("12ms wobble failed the gate: %v", err)
	}
	// An experiment present in the old artefact but missing from the new
	// run is lost coverage and must fail the gate.
	partial := []*experiments.Table{mk("E-1", 100), mk("E-3", 1)}
	if err := compareAgainst(io.Discard, old, partial); err == nil {
		t.Fatal("missing experiment E-2 passed the gate")
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "first.json")
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1", "-json", first}); err != nil {
		t.Fatal(err)
	}
	second := filepath.Join(dir, "second.json")
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1", "-json", second, "-compare", first}); err != nil {
		t.Fatalf("comparison run failed: %v", err)
	}
	data, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	var tables []*experiments.Table
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ElapsedMS <= 0 || tables[0].Name != "rewind-wave" {
		t.Fatalf("artefact missing timing or name: %+v", tables[0])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSweepGrid(t *testing.T) {
	if err := run([]string{"-sweep", "-sweep-n", "4", "-sweep-schemes", "A",
		"-sweep-rates", "0,0.001", "-trials", "1", "-sweep-iterfactor", "10"}); err != nil {
		t.Fatal(err)
	}
	// An explicit rate axis with no noise model to apply it to must fail
	// instead of printing a table whose rate column silently reads 0.
	if err := run([]string{"-sweep", "-sweep-noise", "none", "-sweep-rates", "0.001"}); err == nil {
		t.Error("-sweep-rates with -sweep-noise none accepted")
	}
	// Noise "none" without an explicit rate axis is a plain noiseless grid.
	if err := run([]string{"-sweep", "-sweep-noise", "none", "-sweep-n", "4",
		"-trials", "1", "-sweep-iterfactor", "10"}); err != nil {
		t.Fatalf("noiseless sweep: %v", err)
	}
	// A fixed-topology workload with the default (empty) -sweep-topology
	// resolves to its own family, exactly like mpicsim.
	if err := run([]string{"-sweep", "-sweep-workload", "token-ring", "-sweep-n", "4,5",
		"-trials", "1", "-sweep-iterfactor", "10"}); err != nil {
		t.Fatalf("token-ring sweep with default topology: %v", err)
	}
	if err := run([]string{"-sweep", "-sweep-schemes", "Z"}); err == nil {
		t.Error("bad sweep scheme accepted")
	}
	// The experiment-mode artefact flags have no meaning on a sweep grid;
	// combining them must fail rather than silently skip the gate.
	if err := run([]string{"-sweep", "-json", "x.json"}); err == nil {
		t.Error("-json in sweep mode accepted")
	}
	if err := run([]string{"-sweep", "-compare", "x.json"}); err == nil {
		t.Error("-compare in sweep mode accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunRetryFlags pins the fault-tolerance knobs: -retries is valid in
// both modes (a healthy run is unaffected), -fail-fast is sweep-only,
// and a negative budget is rejected.
func TestRunRetryFlags(t *testing.T) {
	if err := run([]string{"-sweep", "-sweep-n", "4", "-sweep-rates", "0", "-trials", "1",
		"-sweep-iterfactor", "10", "-retries", "2", "-fail-fast=false"}); err != nil {
		t.Fatalf("healthy quarantine-mode sweep: %v", err)
	}
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1", "-retries", "1"}); err != nil {
		t.Fatalf("experiment mode with -retries: %v", err)
	}
	if err := run([]string{"-experiment", "rewind-wave", "-fail-fast=false"}); err == nil ||
		!strings.Contains(err.Error(), "-sweep mode only") {
		t.Errorf("-fail-fast outside sweep mode: got %v", err)
	}
	if err := run([]string{"-retries", "-2"}); err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Errorf("negative -retries: got %v", err)
	}
}

// TestRunRepeatMedian pins the -repeat contract: the artefact carries a
// usable median timing, the flag composes with -json/-compare (cutting
// compare-gate noise is its entire purpose), and the nonsensical
// combinations are rejected.
func TestRunRepeatMedian(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "first.json")
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1",
		"-repeat", "3", "-json", first}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	var tables []*experiments.Table
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ElapsedMS <= 0 || tables[0].Allocs == 0 {
		t.Fatalf("repeated artefact missing median stamps: %+v", tables[0])
	}
	// The whole point: -repeat feeds the -compare gate.
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1",
		"-repeat", "2", "-compare", first}); err != nil {
		t.Fatalf("repeated comparison run failed: %v", err)
	}
	if err := run([]string{"-repeat", "0"}); err == nil || !strings.Contains(err.Error(), "at least 1") {
		t.Errorf("-repeat 0: got %v", err)
	}
	if err := run([]string{"-sweep", "-repeat", "2"}); err == nil {
		t.Error("-repeat in sweep mode accepted")
	}
	if err := run([]string{"-experiment", "rewind-wave", "-repeat", "2",
		"-checkpoint", dir}); err == nil || !strings.Contains(err.Error(), "replays") {
		t.Errorf("-repeat with -checkpoint: got %v", err)
	}
}

// TestMedianTables pins the aggregation itself: odd counts take the
// middle run, even counts the midpoint of the middle two, and the rows
// come from the first run untouched.
func TestMedianTables(t *testing.T) {
	mk := func(ms float64, allocs uint64) []*experiments.Table {
		return []*experiments.Table{{ID: "E-1", Rows: [][]string{{"r"}}, ElapsedMS: ms, Allocs: allocs}}
	}
	odd := medianTables([][]*experiments.Table{mk(90, 10), mk(500, 70), mk(100, 30)})
	if odd[0].ElapsedMS != 100 || odd[0].Allocs != 30 {
		t.Fatalf("odd median = %.1fms/%d allocs, want 100/30", odd[0].ElapsedMS, odd[0].Allocs)
	}
	if len(odd[0].Rows) != 1 {
		t.Fatalf("median dropped the rows: %+v", odd[0])
	}
	even := medianTables([][]*experiments.Table{mk(100, 20), mk(200, 40)})
	if even[0].ElapsedMS != 150 || even[0].Allocs != 30 {
		t.Fatalf("even median = %.1fms/%d allocs, want 150/30", even[0].ElapsedMS, even[0].Allocs)
	}
	single := medianTables([][]*experiments.Table{mk(42, 7)})
	if single[0].ElapsedMS != 42 || single[0].Allocs != 7 {
		t.Fatalf("repeat=1 must pass through: %+v", single[0])
	}
}

// TestRunProfileFlags pins the pprof satellites: both profiles land on
// disk non-empty, and — like -checkpoint — they refuse to stamp the
// -json/-compare artefact path with profiler-skewed timings.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1",
		"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	for _, extra := range [][]string{
		{"-cpuprofile", cpu, "-json", filepath.Join(dir, "x.json")},
		{"-memprofile", mem, "-compare", "BENCH_PR9.json"},
	} {
		args := append([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1"}, extra...)
		if err := run(args); err == nil || !strings.Contains(err.Error(), "skews") {
			t.Errorf("%v: got %v, want profiling rejection", extra, err)
		}
	}
	if err := run([]string{"-sweep", "-cpuprofile", cpu}); err == nil {
		t.Error("-cpuprofile in sweep mode accepted")
	}
	if err := run([]string{"-sweep", "-memprofile", mem}); err == nil {
		t.Error("-memprofile in sweep mode accepted")
	}
}

// failWireNoise is a rate-parameterized noise family whose wiring
// always errors — it drives the sweep sink's failure path without
// touching the engine.
type failWireNoise struct{ rate float64 }

func (failWireNoise) NoiseName() string                   { return "bench-test-failwire" }
func (f failWireNoise) WithRate(r float64) mpic.NoiseSpec { return failWireNoise{rate: r} }
func (failWireNoise) Wire(mpic.NoiseEnv) (mpic.WiredNoise, error) {
	return mpic.WiredNoise{}, errors.New("injected wiring failure")
}

// TestRunSweepQuarantineOutput drives the failure path through the
// sweep sink: every cell's wiring errors, quarantine mode prints ERROR
// markdown rows plus the quarantine note, and runSweep returns the
// *mpic.GridFailure that main maps to exit code 3.
func TestRunSweepQuarantineOutput(t *testing.T) {
	if err := mpic.RegisterNoise("bench-test-failwire", func(rate float64) mpic.NoiseSpec {
		return failWireNoise{rate: rate}
	}); err != nil {
		t.Fatal(err)
	}
	f := sweepTestFlags("")
	f.Noise = "bench-test-failwire"
	f.retries = 1
	f.failFast = false
	var out strings.Builder
	err := runSweep(&out, f)
	var gf *mpic.GridFailure
	if !errors.As(err, &gf) {
		t.Fatalf("quarantined sweep returned %v, want *mpic.GridFailure", err)
	}
	if len(gf.Report.Failed) != 2 {
		t.Fatalf("report lists %d failed cells, want 2", len(gf.Report.Failed))
	}
	for _, want := range []string{
		"ERROR | — | — | after 2 attempt(s)",
		"injected wiring failure",
		"quarantined 2 of 2 cells",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// sweepTestFlags mirrors the flag defaults of run() for direct runSweep
// calls (which let tests capture the streamed output).
func sweepTestFlags(checkpoint string) sweepFlags {
	return sweepFlags{
		Grid: gridspec.Grid{
			Workload: "random", Noise: "random",
			N: "4", Schemes: "A", Rates: "0,0.001",
			IterFactor: 10, Trials: 1, Seed: 1,
		},
		ratesSet: true, parallel: 1, checkpoint: checkpoint, failFast: true,
	}
}

// rowLines extracts the markdown data rows from a streamed sweep output.
func rowLines(out string) []string {
	var rows []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "| ") && !strings.HasPrefix(line, "| n |") {
			rows = append(rows, line)
		}
	}
	return rows
}

// TestSweepCheckpointResume pins the resumable-grid contract, now served
// by the library's durable-session layer (mpic.FileGridStore): a partial
// checkpoint restores its cells without re-running them, the engine
// executes only the missing cells, and the merged output matches a fresh
// full run row for row.
func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")

	// A complete run: every cell lands in the checkpoint.
	var fresh strings.Builder
	if err := runSweep(&fresh, sweepTestFlags(full)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt struct {
		Version int
		Spec    string
		Cells   []json.RawMessage
	}
	if err := json.Unmarshal(data, &ckpt); err != nil {
		t.Fatal(err)
	}
	if ckpt.Version != 3 || ckpt.Spec == "" || len(ckpt.Cells) != 2 {
		t.Fatalf("full checkpoint has version %d, spec %q and %d cells, want v3 with 2 cells",
			ckpt.Version, ckpt.Spec, len(ckpt.Cells))
	}

	// Simulate an interruption: drop the second cell and resume. The
	// truncation goes through the store API so the partial file carries a
	// valid checksum — a hand-edited file would (correctly) be treated as
	// corrupt.
	partial := filepath.Join(dir, "partial.json")
	cells, err := mpic.NewFileGridStore(full).Load(ckpt.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := mpic.NewFileGridStore(partial).Save(ckpt.Spec, cells[:1]); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := runSweep(&resumed, sweepTestFlags(partial)); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !strings.Contains(resumed.String(), "restored 1 of 2 cells") {
		t.Fatalf("resume output missing restore note:\n%s", resumed.String())
	}
	freshRows, resumedRows := rowLines(fresh.String()), rowLines(resumed.String())
	if len(resumedRows) != len(freshRows) {
		t.Fatalf("resumed run printed %d rows, fresh run %d", len(resumedRows), len(freshRows))
	}
	for i := range freshRows {
		if freshRows[i] != resumedRows[i] {
			t.Errorf("row %d differs after resume:\nfresh:   %s\nresumed: %s", i, freshRows[i], resumedRows[i])
		}
	}
	// The resumed run completed the checkpoint back to all cells.
	data, err = os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &ckpt); err != nil {
		t.Fatal(err)
	}
	if len(ckpt.Cells) != 2 {
		t.Fatalf("resumed checkpoint has %d cells, want 2", len(ckpt.Cells))
	}

	// A fully checkpointed grid restores everything and runs nothing.
	var done strings.Builder
	if err := runSweep(&done, sweepTestFlags(partial)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(done.String(), "restored 2 of 2 cells") {
		t.Fatalf("complete checkpoint not fully restored:\n%s", done.String())
	}

	// A checkpoint written by different grid flags must be rejected, not
	// silently merged.
	other := sweepTestFlags(partial)
	other.Rates = "0,0.002"
	if err := runSweep(io.Discard, other); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("mismatched checkpoint spec accepted: %v", err)
	}
}

// TestSweepCheckpointVersionRejected pins the format-versioning
// contract: a pre-session checkpoint (the shape this command used to
// write itself) is refused with a clear message instead of being
// misread.
func TestSweepCheckpointVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	legacy := `{"Spec": "anything", "Cells": []}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runSweep(io.Discard, sweepTestFlags(path))
	if err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("legacy checkpoint accepted: %v", err)
	}
}

// TestRunExperimentCheckpoint exercises the experiment-mode -checkpoint
// flag: grids persist per-fingerprint session files into the directory,
// and a second run resumes from them without error. (Row-level
// resume identity is pinned in internal/experiments.)
func TestRunExperimentCheckpoint(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-experiment", "cc-noise", "-quick", "-trials", "1", "-checkpoint", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("experiment checkpoint directory left empty")
	}
	if err := run(args); err != nil {
		t.Fatalf("checkpointed re-run failed: %v", err)
	}
	// The flag belongs to experiment mode; a sweep grid uses
	// -sweep-checkpoint instead.
	if err := run([]string{"-sweep", "-checkpoint", dir}); err == nil {
		t.Error("-checkpoint in sweep mode accepted")
	}
	// Resumed tables replay with near-zero ElapsedMS; letting them feed
	// the -json artefact or the -compare gate would poison the baseline
	// / fake a speedup.
	if err := run(append(args, "-json", filepath.Join(dir, "x.json"))); err == nil {
		t.Error("-checkpoint with -json accepted")
	}
	if err := run(append(args, "-compare", "BENCH_PR4.json")); err == nil {
		t.Error("-checkpoint with -compare accepted")
	}
}

// TestRunSweepParallelAndCheckpointFlags exercises the new flags through
// the real flag parser.
func TestRunSweepParallelAndCheckpointFlags(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	if err := run([]string{"-sweep", "-sweep-n", "4", "-sweep-schemes", "A",
		"-sweep-rates", "0,0.001", "-trials", "1", "-sweep-iterfactor", "10",
		"-parallel", "2", "-sweep-checkpoint", ck}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
}
