package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID     string
		Header []string
		Rows   [][]string
	}
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatalf("invalid JSON artefact: %v", err)
	}
	if len(tables) != 1 || tables[0].ID == "" || len(tables[0].Rows) == 0 {
		t.Fatalf("JSON artefact incomplete: %+v", tables)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
