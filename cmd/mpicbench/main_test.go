package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "rewind-wave", "-quick", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
