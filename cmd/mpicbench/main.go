// Command mpicbench regenerates the paper's evaluation artefacts: the
// Table 1 comparison and the figure-style experiments of DESIGN.md §4,
// printed as markdown tables (the source material of EXPERIMENTS.md).
//
// Example:
//
//	mpicbench -experiment table1
//	mpicbench -experiment all -quick
//	mpicbench -experiment all -quick -json BENCH_PR1.json
//	mpicbench -experiment all -quick -json BENCH_PR2.json -compare BENCH_PR1.json
//
// The -json flag additionally writes the tables as machine-readable JSON
// (experiment ID, title, header, rows, notes, wall-clock cost), so
// successive PRs can track the performance and fidelity trajectory by
// diffing artefact files instead of re-parsing markdown.
//
// The -compare flag loads a prior artefact and prints per-experiment
// speedup ratios (old wall-clock / new wall-clock); the command exits
// non-zero if any experiment regressed by more than 10% (beyond a small
// absolute guard against timer noise on sub-25ms experiments). Artefacts
// produced before wall-clock stamping existed compare as "n/a".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpic/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpicbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpicbench", flag.ContinueOnError)
	var (
		name     = fs.String("experiment", "all", "experiment name or 'all': "+strings.Join(experiments.Names(), ", "))
		trials   = fs.Int("trials", 10, "trials per measured cell")
		seed     = fs.Int64("seed", 1, "base random seed")
		quick    = fs.Bool("quick", false, "smaller sizes and trial counts")
		jsonPath = fs.String("json", "", "also write results as JSON to this file (e.g. BENCH_PR2.json)")
		compare  = fs.String("compare", "", "prior JSON artefact to compare against (e.g. BENCH_PR1.json); exits non-zero on >10% wall-clock regression")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, Quick: *quick}
	var tables []*experiments.Table
	if *name == "all" {
		all, err := experiments.RunAll(cfg)
		if err != nil {
			return err
		}
		tables = all
	} else {
		t, err := experiments.Run(*name, cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	for _, t := range tables {
		fmt.Println(t.Markdown())
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, tables); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
	}
	if *compare != "" {
		if err := compareAgainst(os.Stdout, *compare, tables); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, tables []*experiments.Table) error {
	data, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// regressionGuardMS is the absolute slack added to the 10% regression
// threshold: sub-25ms experiments flap by more than 10% from timer and
// scheduler noise alone, so a regression must also cost at least this
// much wall clock before it fails the comparison.
const regressionGuardMS = 25

// compareAgainst matches the freshly produced tables with a prior
// artefact by experiment ID and prints the speedup table. It returns an
// error (non-zero exit) if any experiment regressed by more than 10%
// beyond the noise guard.
func compareAgainst(w io.Writer, path string, tables []*experiments.Table) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading comparison artefact: %w", err)
	}
	var old []*experiments.Table
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	oldByID := make(map[string]*experiments.Table, len(old))
	for _, t := range old {
		oldByID[t.ID] = t
	}
	fmt.Fprintf(w, "### Comparison against %s\n\n", path)
	fmt.Fprintln(w, "| experiment | old ms | new ms | speedup |")
	fmt.Fprintln(w, "|---|---|---|---|")
	var regressed []string
	seen := make(map[string]bool, len(tables))
	for _, t := range tables {
		seen[t.ID] = true
		o, ok := oldByID[t.ID]
		switch {
		case !ok:
			fmt.Fprintf(w, "| %s | — | %.1f | new |\n", t.ID, t.ElapsedMS)
		case o.ElapsedMS <= 0 || t.ElapsedMS <= 0:
			fmt.Fprintf(w, "| %s | n/a | %.1f | n/a |\n", t.ID, t.ElapsedMS)
		default:
			fmt.Fprintf(w, "| %s | %.1f | %.1f | %.2f× |\n", t.ID, o.ElapsedMS, t.ElapsedMS, o.ElapsedMS/t.ElapsedMS)
			if t.ElapsedMS > o.ElapsedMS*1.10 && t.ElapsedMS-o.ElapsedMS > regressionGuardMS {
				regressed = append(regressed, fmt.Sprintf("%s (%.1fms → %.1fms)", t.ID, o.ElapsedMS, t.ElapsedMS))
			}
		}
	}
	// Experiments in the old artefact that this run did not produce are
	// lost coverage — a rename or removal must not silently pass the gate.
	var missing []string
	for _, o := range old {
		if !seen[o.ID] {
			fmt.Fprintf(w, "| %s | %.1f | — | missing |\n", o.ID, o.ElapsedMS)
			missing = append(missing, o.ID)
		}
	}
	fmt.Fprintln(w)
	if len(regressed) > 0 {
		return fmt.Errorf("wall-clock regression >10%%: %s", strings.Join(regressed, ", "))
	}
	if len(missing) > 0 {
		return fmt.Errorf("experiments in %s not produced by this run: %s", path, strings.Join(missing, ", "))
	}
	return nil
}
