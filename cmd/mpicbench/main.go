// Command mpicbench regenerates the paper's evaluation artefacts: the
// Table 1 comparison and the figure-style experiments of DESIGN.md §4,
// printed as markdown tables (the source material of EXPERIMENTS.md).
//
// Example:
//
//	mpicbench -experiment table1
//	mpicbench -experiment all -quick
//	mpicbench -experiment all -quick -json BENCH_PR1.json
//	mpicbench -experiment all -quick -json BENCH_PR2.json -compare BENCH_PR1.json
//
// The -json flag additionally writes the tables as machine-readable JSON
// (experiment ID, title, header, rows, notes, wall-clock cost), so
// successive PRs can track the performance and fidelity trajectory by
// diffing artefact files instead of re-parsing markdown.
//
// The -compare flag loads a prior artefact and prints per-experiment
// speedup ratios (old wall-clock / new wall-clock); the command exits
// non-zero if any experiment regressed by more than 10% (beyond a small
// absolute guard against timer noise on sub-25ms experiments). Artefacts
// produced before wall-clock stamping existed compare as "n/a".
//
// The -sweep flag switches the command to a Runner.Sweep grid instead of
// the named experiments: a cartesian product over party counts, schemes
// and noise rates, printed as one markdown table. Example:
//
//	mpicbench -sweep -sweep-n 4,6 -sweep-schemes A,B -sweep-rates 0,0.002 -trials 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mpic"
	"mpic/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpicbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpicbench", flag.ContinueOnError)
	var (
		name     = fs.String("experiment", "all", "experiment name or 'all': "+strings.Join(experiments.Names(), ", "))
		trials   = fs.Int("trials", 10, "trials per measured cell")
		seed     = fs.Int64("seed", 1, "base random seed")
		quick    = fs.Bool("quick", false, "smaller sizes and trial counts")
		jsonPath = fs.String("json", "", "also write results as JSON to this file (e.g. BENCH_PR2.json)")
		compare  = fs.String("compare", "", "prior JSON artefact to compare against (e.g. BENCH_PR1.json); exits non-zero on >10% wall-clock regression")

		doSweep    = fs.Bool("sweep", false, "run a Runner.Sweep grid instead of the named experiments")
		swTopology = fs.String("sweep-topology", "", "sweep: topology family ("+strings.Join(mpic.TopologyNames(), "|")+"; default: the workload's)")
		swWorkload = fs.String("sweep-workload", "random", "sweep: workload family ("+strings.Join(mpic.WorkloadNames(), "|")+")")
		swRounds   = fs.Int("sweep-rounds", 0, "sweep: workload rounds (0 = default)")
		swNoise    = fs.String("sweep-noise", "random", "sweep: noise family ("+strings.Join(mpic.NoiseNames(), "|")+")")
		swN        = fs.String("sweep-n", "4,6", "sweep: comma-separated party counts")
		swSchemes  = fs.String("sweep-schemes", "A", "sweep: comma-separated schemes (1|A|B|C)")
		swRates    = fs.String("sweep-rates", "0.001", "sweep: comma-separated noise rates")
		swIters    = fs.Int("sweep-iterfactor", 30, "sweep: iteration budget multiplier")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *doSweep {
		ratesSet := false
		var flagErr error
		fs.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "sweep-rates":
				ratesSet = true
			case "json", "compare", "experiment", "quick":
				// Dropping these silently would un-gate CI jobs modeled on
				// `make compare` (or leave a -quick grid running at full
				// cost); reject the combination loudly instead.
				flagErr = fmt.Errorf("-%s is not supported in -sweep mode", fl.Name)
			}
		})
		if flagErr != nil {
			return flagErr
		}
		return runSweep(os.Stdout, sweepFlags{
			topology: *swTopology, workload: *swWorkload, rounds: *swRounds,
			noise: *swNoise, n: *swN, schemes: *swSchemes, rates: *swRates,
			iterFactor: *swIters, trials: *trials, seed: *seed, ratesSet: ratesSet,
		})
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, Quick: *quick}
	var tables []*experiments.Table
	if *name == "all" {
		all, err := experiments.RunAll(cfg)
		if err != nil {
			return err
		}
		tables = all
	} else {
		t, err := experiments.Run(*name, cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	for _, t := range tables {
		fmt.Println(t.Markdown())
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, tables); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
	}
	if *compare != "" {
		if err := compareAgainst(os.Stdout, *compare, tables); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, tables []*experiments.Table) error {
	data, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// regressionGuardMS is the absolute slack added to the 10% regression
// threshold: sub-25ms experiments flap by more than 10% from timer and
// scheduler noise alone, so a regression must also cost at least this
// much wall clock before it fails the comparison.
const regressionGuardMS = 25

// compareAgainst matches the freshly produced tables with a prior
// artefact by experiment ID and prints the speedup table. It returns an
// error (non-zero exit) if any experiment regressed by more than 10%
// beyond the noise guard.
func compareAgainst(w io.Writer, path string, tables []*experiments.Table) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading comparison artefact: %w", err)
	}
	var old []*experiments.Table
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	oldByID := make(map[string]*experiments.Table, len(old))
	for _, t := range old {
		oldByID[t.ID] = t
	}
	fmt.Fprintf(w, "### Comparison against %s\n\n", path)
	fmt.Fprintln(w, "| experiment | old ms | new ms | speedup |")
	fmt.Fprintln(w, "|---|---|---|---|")
	var regressed []string
	seen := make(map[string]bool, len(tables))
	for _, t := range tables {
		seen[t.ID] = true
		o, ok := oldByID[t.ID]
		switch {
		case !ok:
			fmt.Fprintf(w, "| %s | — | %.1f | new |\n", t.ID, t.ElapsedMS)
		case o.ElapsedMS <= 0 || t.ElapsedMS <= 0:
			fmt.Fprintf(w, "| %s | n/a | %.1f | n/a |\n", t.ID, t.ElapsedMS)
		default:
			fmt.Fprintf(w, "| %s | %.1f | %.1f | %.2f× |\n", t.ID, o.ElapsedMS, t.ElapsedMS, o.ElapsedMS/t.ElapsedMS)
			if t.ElapsedMS > o.ElapsedMS*1.10 && t.ElapsedMS-o.ElapsedMS > regressionGuardMS {
				regressed = append(regressed, fmt.Sprintf("%s (%.1fms → %.1fms)", t.ID, o.ElapsedMS, t.ElapsedMS))
			}
		}
	}
	// Experiments in the old artefact that this run did not produce are
	// lost coverage — a rename or removal must not silently pass the gate.
	var missing []string
	for _, o := range old {
		if !seen[o.ID] {
			fmt.Fprintf(w, "| %s | %.1f | — | missing |\n", o.ID, o.ElapsedMS)
			missing = append(missing, o.ID)
		}
	}
	fmt.Fprintln(w)
	if len(regressed) > 0 {
		return fmt.Errorf("wall-clock regression >10%%: %s", strings.Join(regressed, ", "))
	}
	if len(missing) > 0 {
		return fmt.Errorf("experiments in %s not produced by this run: %s", path, strings.Join(missing, ", "))
	}
	return nil
}

// sweepFlags carries the -sweep-* flag values.
type sweepFlags struct {
	topology, workload, noise string
	n, schemes, rates         string
	rounds, iterFactor        int
	trials                    int
	seed                      int64
	// ratesSet records whether -sweep-rates was given explicitly, so a
	// rate axis that would silently vanish (noise "none") errors instead.
	ratesSet bool
}

// runSweep executes the cartesian grid through mpic.Runner.Sweep and
// prints one markdown table.
func runSweep(w io.Writer, f sweepFlags) error {
	ns, err := parseInts(f.n)
	if err != nil {
		return fmt.Errorf("-sweep-n: %w", err)
	}
	rates, err := parseFloats(f.rates)
	if err != nil {
		return fmt.Errorf("-sweep-rates: %w", err)
	}
	var schemes []mpic.Scheme
	for _, s := range strings.Split(f.schemes, ",") {
		sch, err := mpic.ParseScheme(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("-sweep-schemes: %w", err)
		}
		schemes = append(schemes, sch)
	}
	// Parse the names exactly like mpicsim does — through the legacy
	// Config shim — so an empty -sweep-topology resolves to the
	// workload's own default (fixed-topology workloads included).
	base, err := mpic.Config{
		Topology: f.topology,
		N:        ns[0],
		Workload: f.workload, WorkloadRounds: f.rounds,
		Noise:      f.noise,
		Seed:       f.seed,
		IterFactor: f.iterFactor,
	}.Scenario()
	if err != nil {
		return err
	}
	if base.Noise == nil && f.ratesSet {
		return fmt.Errorf("-sweep-rates has no effect with -sweep-noise %q; pick a noise model to sweep rates over", f.noise)
	}
	sw := mpic.Sweep{
		Base:     base,
		N:        ns,
		Schemes:  schemes,
		Trials:   f.trials,
		SeedStep: 7907,
	}
	if base.Noise != nil {
		sw.Rates = rates
	}
	runner := mpic.NewRunner()
	defer runner.Close()
	cells, err := runner.Sweep(context.Background(), sw)
	if err != nil {
		return err
	}
	t := &experiments.Table{
		ID:    "SWEEP",
		Title: fmt.Sprintf("Runner.Sweep: %s workload over %s, noise %s", f.workload, base.Topology.Name, f.noise),
		Header: []string{"n", "scheme", "noise rate", "success", "mean blowup",
			"mean iterations", "corruptions"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c.N),
			c.Scheme.String(),
			fmt.Sprintf("%g", c.Rate),
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			fmt.Sprintf("%.1f", c.MeanBlowup()),
			fmt.Sprintf("%.0f", c.MeanIterations()),
			fmt.Sprint(c.Corruptions),
		})
	}
	fmt.Fprintln(w, t.Markdown())
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
