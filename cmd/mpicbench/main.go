// Command mpicbench regenerates the paper's evaluation artefacts: the
// Table 1 comparison and the figure-style experiments of DESIGN.md §4,
// printed as markdown tables (the source material of EXPERIMENTS.md).
//
// Example:
//
//	mpicbench -experiment table1
//	mpicbench -experiment all -quick
//	mpicbench -experiment all -quick -json BENCH_PR1.json
//	mpicbench -experiment all -quick -json BENCH_PR2.json -compare BENCH_PR1.json
//
// The -json flag additionally writes the tables as machine-readable JSON
// (experiment ID, title, header, rows, notes, wall-clock cost), so
// successive PRs can track the performance and fidelity trajectory by
// diffing artefact files instead of re-parsing markdown.
//
// The -compare flag loads a prior artefact and prints per-experiment
// speedup ratios (old wall-clock / new wall-clock); the command exits
// non-zero if any experiment regressed by more than 10% (beyond a small
// absolute guard against timer noise on sub-25ms experiments). Artefacts
// produced before wall-clock stamping existed compare as "n/a".
//
// The -repeat flag runs the experiment tables N times and stamps each
// table with the median ElapsedMS and Allocs across the runs, so the
// artefact fed to -json/-compare carries a timing that same-binary
// scheduler noise cannot flap by ±10%:
//
//	mpicbench -experiment all -quick -repeat 3 -json BENCH_PR10.json
//
// The -cpuprofile and -memprofile flags write pprof profiles of the
// experiment run, so a claimed hot-path win can be verified against the
// actual flame graph. Profiling skews wall clock, so — exactly like
// -checkpoint — these flags do not combine with -json or -compare.
//
// The -sweep flag switches the command to a streaming grid run instead
// of the named experiments: a cartesian product over party counts,
// schemes and noise rates, executed by the parallel grid engine
// (mpic.Runner.RunGrid) with each row printed the moment its cell
// completes. -parallel bounds the worker pool (0 = GOMAXPROCS, 1 =
// sequential); results are bit-identical at any setting, only row order
// and wall clock change. Example:
//
//	mpicbench -sweep -sweep-n 4,6 -sweep-schemes A,B -sweep-rates 0,0.002 -trials 2
//
// In sweep mode, -delay adds a fourth grid axis of network delay models
// (comma-separated name[:param], run on the virtual-time executor; the
// table gains a delay column) and -netfaults layers a deterministic
// network-fault schedule — outages, delay spikes, stragglers, crash-stop
// parties — onto every cell:
//
//	mpicbench -sweep -sweep-n 6 -delay unit,jitter:0.5,lognormal:0.3 \
//	    -netfaults outage=0.01,stragglers=1 -trials 2
//
// The -retries flag gives every failed grid cell that many extra
// attempts under deterministic backoff (retried results are
// bit-identical to first-try ones); in sweep mode -fail-fast=false
// additionally quarantines cells that exhaust the budget — the grid
// finishes, failed cells print as ERROR rows, and the command exits
// with code 3 (partial success) instead of 1 (hard failure).
//
// The -sweep-checkpoint flag makes long grids resumable through the
// library's durable-session layer (mpic.FileGridStore): after every
// completed cell the named JSON file is atomically rewritten with all
// finished cells, keyed by (n, scheme, rate), plus a fingerprint of the
// grid flags. Re-running the same command after an interruption restores
// the checkpointed cells without re-running them and executes only the
// rest; a checkpoint written by different grid flags is rejected. The
// -checkpoint flag is the experiment-mode equivalent: a directory in
// which every experiment grid persists its cells, so an interrupted
// `-experiment all` resumes the tables it finished. Because restored
// tables replay with non-comparable wall-clock timings, -checkpoint
// does not combine with -json or -compare.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"mpic"
	"mpic/internal/experiments"
	"mpic/internal/gridspec"
)

// Exit codes: 0 — clean success; 3 — a -sweep grid in quarantine mode
// (-fail-fast=false) finished with failed cells (partial success: the
// printed healthy rows are valid); 1 — hard failure (bad flags, a run
// error in fail-fast mode, a wall-clock regression under -compare).
func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "mpicbench:", err)
	var gf *mpic.GridFailure
	if errors.As(err, &gf) {
		os.Exit(3)
	}
	os.Exit(1)
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpicbench", flag.ContinueOnError)
	var (
		name     = fs.String("experiment", "all", "experiment name or 'all': "+strings.Join(experiments.Names(), ", "))
		trials   = fs.Int("trials", 10, "trials per measured cell")
		seed     = fs.Int64("seed", 1, "base random seed")
		quick    = fs.Bool("quick", false, "smaller sizes and trial counts")
		jsonPath = fs.String("json", "", "also write results as JSON to this file (e.g. BENCH_PR2.json)")
		compare  = fs.String("compare", "", "prior JSON artefact to compare against (e.g. BENCH_PR1.json); exits non-zero on >10% wall-clock regression")
		ckptDir  = fs.String("checkpoint", "", "experiment mode: directory of resumable per-grid checkpoints (interrupted tables resume instead of restarting; not combinable with -json/-compare, whose timings assume fresh runs)")
		repeat   = fs.Int("repeat", 1, "experiment mode: run the tables this many times and report the median ElapsedMS/Allocs (cuts same-binary timer noise out of the -compare gate)")
		cpuProf  = fs.String("cpuprofile", "", "experiment mode: write a CPU profile to this file (not combinable with -json/-compare, whose timings assume unprofiled runs)")
		memProf  = fs.String("memprofile", "", "experiment mode: write a heap profile to this file after the tables finish (not combinable with -json/-compare)")
		retries  = fs.Int("retries", 0, "re-run a failed grid cell up to this many extra times (deterministic backoff; retried results are bit-identical)")
		failFast = fs.Bool("fail-fast", true, "sweep mode: stop on the first failed cell; =false quarantines failed cells, finishes the grid, and exits with code 3")

		doSweep    = fs.Bool("sweep", false, "run a streaming grid instead of the named experiments")
		swTopology = fs.String("sweep-topology", "", "sweep: topology family ("+strings.Join(mpic.TopologyNames(), "|")+"; default: the workload's)")
		swWorkload = fs.String("sweep-workload", "random", "sweep: workload family ("+strings.Join(mpic.WorkloadNames(), "|")+")")
		swRounds   = fs.Int("sweep-rounds", 0, "sweep: workload rounds (0 = default)")
		swNoise    = fs.String("sweep-noise", "random", "sweep: noise family ("+strings.Join(mpic.NoiseNames(), "|")+")")
		swN        = fs.String("sweep-n", "4,6", "sweep: comma-separated party counts")
		swSchemes  = fs.String("sweep-schemes", "A", "sweep: comma-separated schemes (1|A|B|C)")
		swRates    = fs.String("sweep-rates", "0.001", "sweep: comma-separated noise rates")
		swIters    = fs.Int("sweep-iterfactor", 30, "sweep: iteration budget multiplier")
		swParallel = fs.Int("parallel", 0, "sweep: concurrent cells (0 = GOMAXPROCS, 1 = sequential)")
		swCkpt     = fs.String("sweep-checkpoint", "", "sweep: incremental JSON checkpoint file; an existing one resumes the grid")
		swHashMode = fs.String("sweep-hashmode", "", "sweep: prefix-hash seed discipline for every cell (epoch|legacy|incremental; empty = the library default, epoch)")
		swEpochR   = fs.Int("sweep-epoch-refresh", 0, "sweep: epoch mode's seed-refresh interval R in iterations (0 = default)")
		swDelay    = fs.String("delay", "", "sweep: comma-separated delay models (name[:param], "+strings.Join(mpic.DelayNames(), "|")+") run as a fourth grid axis; empty = lockstep")
		swNetFlt   = fs.String("netfaults", "", "sweep: network-fault schedule applied to every cell, comma-separated k=v (outage, spike, stragglers, crashes, ...)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", *retries)
	}
	if !*doSweep {
		// Quarantine is a streaming-grid mode: a named experiment's table
		// is meaningless with holes in it, so experiment mode always fails
		// fast and the flag is rejected rather than ignored. The network
		// timing flags are likewise sweep-only: the named experiments pin
		// the paper's lockstep tables.
		var flagErr error
		fs.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "fail-fast":
				flagErr = fmt.Errorf("-fail-fast applies to -sweep mode only (experiment tables always fail fast)")
			case "delay", "netfaults":
				flagErr = fmt.Errorf("-%s applies to -sweep mode only (experiment tables pin the lockstep network)", fl.Name)
			}
		})
		if flagErr != nil {
			return flagErr
		}
	}
	if *doSweep {
		ratesSet := false
		var flagErr error
		fs.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "sweep-rates":
				ratesSet = true
			case "json", "compare", "experiment", "quick", "checkpoint", "repeat", "cpuprofile", "memprofile":
				// Dropping these silently would un-gate CI jobs modeled on
				// `make compare` (or leave a -quick grid running at full
				// cost); reject the combination loudly instead.
				flagErr = fmt.Errorf("-%s is not supported in -sweep mode", fl.Name)
			}
		})
		if flagErr != nil {
			return flagErr
		}
		return runSweep(os.Stdout, sweepFlags{
			Grid: gridspec.Grid{
				Topology: *swTopology, Workload: *swWorkload, Rounds: *swRounds,
				Noise: *swNoise, N: *swN, Schemes: *swSchemes, Rates: *swRates,
				IterFactor: *swIters, Trials: *trials, Seed: *seed,
				HashMode: *swHashMode, EpochRefresh: *swEpochR,
				Delay: *swDelay, NetFaults: *swNetFlt,
			},
			ratesSet: ratesSet, parallel: *swParallel, checkpoint: *swCkpt,
			retries: *retries, failFast: *failFast,
		})
	}
	if *ckptDir != "" && (*jsonPath != "" || *compare != "") {
		// Restored tables replay in near-zero wall clock, so a resumed
		// run's ElapsedMS is meaningless: written to a -json artefact it
		// poisons the next baseline, and fed to -compare it un-gates the
		// regression check behind a fake speedup. Reject the combination
		// loudly, exactly like sweep mode rejects its artefact flags.
		return fmt.Errorf("-checkpoint resumes tables with non-comparable wall-clock timings; it does not combine with -json/-compare")
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1, got %d", *repeat)
	}
	if *repeat > 1 && *ckptDir != "" {
		// Every repetition after the first would restore the checkpointed
		// tables in near-zero wall clock, so the "median" would be a replay
		// timing — the exact poison -repeat exists to remove.
		return fmt.Errorf("-repeat re-runs tables for median timings; it does not combine with -checkpoint, which replays finished tables")
	}
	if (*cpuProf != "" || *memProf != "") && (*jsonPath != "" || *compare != "") {
		// A profiled run's wall clock carries the profiler's overhead:
		// written to a -json artefact it poisons the next baseline, and fed
		// to -compare it trips (or hides) the regression gate. Same
		// rejection shape as -checkpoint.
		return fmt.Errorf("profiling skews wall-clock timings; -cpuprofile/-memprofile do not combine with -json/-compare")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *cpuProf, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, Quick: *quick, Checkpoint: *ckptDir, Retries: *retries}
	collect := func() ([]*experiments.Table, error) {
		if *name == "all" {
			return experiments.RunAll(cfg)
		}
		t, err := experiments.Run(*name, cfg)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{t}, nil
	}
	runs := make([][]*experiments.Table, 0, *repeat)
	for r := 0; r < *repeat; r++ {
		ts, err := collect()
		if err != nil {
			return err
		}
		runs = append(runs, ts)
	}
	tables := medianTables(runs)
	for _, t := range tables {
		fmt.Println(t.Markdown())
	}
	if *repeat > 1 {
		fmt.Printf("*ElapsedMS/Allocs are medians over %d runs*\n\n", *repeat)
	}
	if *memProf != "" {
		if err := writeHeapProfile(*memProf); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, tables); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
	}
	if *compare != "" {
		if err := compareAgainst(os.Stdout, *compare, tables); err != nil {
			return err
		}
	}
	return nil
}

// medianTables collapses N repeated runs into one table set: the first
// run's tables (rows are deterministic, so every run printed the same
// ones) restamped with the median ElapsedMS and Allocs across the runs.
// The median — not the mean — is what de-flaps the -compare gate: one
// run preempted by the scheduler moves the mean but not the median.
func medianTables(runs [][]*experiments.Table) []*experiments.Table {
	tables := runs[0]
	if len(runs) == 1 {
		return tables
	}
	for i, t := range tables {
		ms := make([]float64, len(runs))
		allocs := make([]uint64, len(runs))
		for j, run := range runs {
			ms[j] = run[i].ElapsedMS
			allocs[j] = run[i].Allocs
		}
		sort.Float64s(ms)
		sort.Slice(allocs, func(a, b int) bool { return allocs[a] < allocs[b] })
		n := len(runs)
		if n%2 == 1 {
			t.ElapsedMS = ms[n/2]
			t.Allocs = allocs[n/2]
		} else {
			t.ElapsedMS = (ms[n/2-1] + ms[n/2]) / 2
			t.Allocs = (allocs[n/2-1] + allocs[n/2]) / 2
		}
	}
	return tables
}

// writeHeapProfile snapshots the heap after a GC so the profile shows
// live retention rather than garbage awaiting collection.
func writeHeapProfile(path string) error {
	runtime.GC()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("writing heap profile: %w", err)
	}
	return f.Close()
}

func writeJSON(path string, tables []*experiments.Table) error {
	data, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// regressionGuardMS is the absolute slack added to the 10% regression
// threshold: sub-25ms experiments flap by more than 10% from timer and
// scheduler noise alone, so a regression must also cost at least this
// much wall clock before it fails the comparison.
const regressionGuardMS = 25

// regressionGuardAllocs is the allocation-count analogue: GC timing and
// map growth make tiny tables flap by a few thousand allocations, so an
// allocs regression must also be at least this many allocations before
// it fails the comparison.
const regressionGuardAllocs = 10000

// compareAgainst matches the freshly produced tables with a prior
// artefact by experiment ID and prints the speedup table. It returns an
// error (non-zero exit) if any experiment's wall clock or heap
// allocation count regressed by more than 10% beyond the noise guards.
func compareAgainst(w io.Writer, path string, tables []*experiments.Table) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading comparison artefact: %w", err)
	}
	var old []*experiments.Table
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	oldByID := make(map[string]*experiments.Table, len(old))
	for _, t := range old {
		oldByID[t.ID] = t
	}
	fmt.Fprintf(w, "### Comparison against %s\n\n", path)
	fmt.Fprintln(w, "| experiment | old ms | new ms | speedup | old allocs | new allocs |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	var regressed []string
	seen := make(map[string]bool, len(tables))
	allocCols := func(o, t *experiments.Table) string {
		if o == nil || o.Allocs == 0 || t.Allocs == 0 {
			return fmt.Sprintf(" n/a | %d |", t.Allocs)
		}
		return fmt.Sprintf(" %d | %d |", o.Allocs, t.Allocs)
	}
	for _, t := range tables {
		seen[t.ID] = true
		o, ok := oldByID[t.ID]
		switch {
		case !ok:
			fmt.Fprintf(w, "| %s | — | %.1f | new |%s\n", t.ID, t.ElapsedMS, allocCols(nil, t))
		case o.ElapsedMS <= 0 || t.ElapsedMS <= 0:
			fmt.Fprintf(w, "| %s | n/a | %.1f | n/a |%s\n", t.ID, t.ElapsedMS, allocCols(o, t))
		default:
			fmt.Fprintf(w, "| %s | %.1f | %.1f | %.2f× |%s\n", t.ID, o.ElapsedMS, t.ElapsedMS, o.ElapsedMS/t.ElapsedMS, allocCols(o, t))
			if t.ElapsedMS > o.ElapsedMS*1.10 && t.ElapsedMS-o.ElapsedMS > regressionGuardMS {
				regressed = append(regressed, fmt.Sprintf("%s (%.1fms → %.1fms)", t.ID, o.ElapsedMS, t.ElapsedMS))
			}
		}
		if ok && o.Allocs > 0 && t.Allocs > 0 &&
			float64(t.Allocs) > float64(o.Allocs)*1.10 && t.Allocs-o.Allocs > regressionGuardAllocs {
			regressed = append(regressed, fmt.Sprintf("%s (allocs %d → %d)", t.ID, o.Allocs, t.Allocs))
		}
	}
	// Experiments in the old artefact that this run did not produce are
	// lost coverage — a rename or removal must not silently pass the gate.
	var missing []string
	for _, o := range old {
		if !seen[o.ID] {
			fmt.Fprintf(w, "| %s | %.1f | — | missing |\n", o.ID, o.ElapsedMS)
			missing = append(missing, o.ID)
		}
	}
	fmt.Fprintln(w)
	if len(regressed) > 0 {
		return fmt.Errorf("performance regression >10%%: %s", strings.Join(regressed, ", "))
	}
	if len(missing) > 0 {
		return fmt.Errorf("experiments in %s not produced by this run: %s", path, strings.Join(missing, ", "))
	}
	return nil
}

// sweepFlags carries the -sweep-* flag values: the grid-defining ones
// as a shared gridspec.Grid (the same struct mpicserve accepts as a
// JSON body), plus the execution-only flags that shape how — not what —
// the grid runs.
type sweepFlags struct {
	gridspec.Grid
	// ratesSet records whether -sweep-rates was given explicitly, so a
	// rate axis that would silently vanish (noise "none") errors instead.
	ratesSet bool
	// parallel bounds the engine's worker pool (0 = GOMAXPROCS).
	parallel int
	// checkpoint, when set, is the incremental JSON checkpoint file.
	checkpoint string
	// retries is the extra attempts a failed cell gets; failFast=false
	// quarantines cells that still fail instead of aborting the grid.
	retries  int
	failFast bool
}

// runSweep executes the cartesian grid through the streaming parallel
// engine, printing one markdown row per cell as it completes. When a
// checkpoint file is configured, the grid runs as a durable session
// (mpic.FileGridStore under the flag fingerprint): every finished cell
// is persisted by the engine, and a re-run restores the completed cells
// — streamed first, in definition order — before executing the rest.
func runSweep(w io.Writer, f sweepFlags) error {
	// The grid-defining flags resolve through the shared spec parser
	// (internal/gridspec) — the same code path mpicserve submissions
	// take, including the checkpoint fingerprint.
	sw, err := f.Grid.Sweep()
	if err != nil {
		return err
	}
	if sw.Base.Noise == nil && f.ratesSet {
		return fmt.Errorf("-sweep-rates has no effect with -sweep-noise %q; pick a noise model to sweep rates over", f.Noise)
	}
	sw.Workers = f.parallel
	grid, err := sw.Grid()
	if err != nil {
		return err
	}
	delays := sw.Delays
	if f.checkpoint != "" {
		// The library owns the resume flow; the flag fingerprint is the
		// session's spec, so a checkpoint written by different grid flags
		// is rejected instead of silently merged. Retry/quarantine flags
		// stay out of the spec: they change fault handling, never results.
		grid.Spec = f.Grid.Spec()
		grid.Store = mpic.NewFileGridStore(f.checkpoint)
	}
	if f.retries > 0 {
		grid.Retry = mpic.RetryPolicy{MaxAttempts: f.retries + 1, JitterSeed: f.Seed}
	}
	if !f.failFast {
		grid.OnCellError = mpic.QuarantineCells
	}

	// Stream the table: title and header up front, one row per cell the
	// moment it completes (restored cells first, in definition order).
	// Row order under -parallel is completion order; the n/scheme/rate
	// columns are the row identity, exactly like the checkpoint keys.
	title := fmt.Sprintf("Runner.Sweep: %s workload over %s, noise %s", f.Workload, sw.Base.Topology.Name, f.Noise)
	// The delay column appears only when the delay axis is in use, so
	// lockstep sweeps keep their historical table shape.
	withDelay := len(delays) > 0
	header := []string{"n", "scheme", "noise rate", "success", "mean blowup",
		"mean iterations", "corruptions"}
	if withDelay {
		header = append([]string{"n", "scheme", "noise rate", "delay"}, header[3:]...)
	}
	fmt.Fprintf(w, "### SWEEP — %s\n\n", title)
	fmt.Fprintln(w, "| "+strings.Join(header, " | ")+" |")
	fmt.Fprintln(w, "|"+strings.Repeat("---|", len(header)))
	runner := mpic.NewRunner()
	defer runner.Close()
	restored, failed := 0, 0
	err = runner.RunGrid(context.Background(), grid, func(res mpic.GridCellResult) {
		// The engine serializes sink calls (and persists the cell before
		// streaming it), so printing here is race-free even under
		// -parallel.
		if res.Err != nil {
			failed++
			dcol := ""
			if withDelay {
				dcol = fmt.Sprintf(" %s |", res.Key.Delay)
			}
			fmt.Fprintf(w, "| %d | %s | %g |%s ERROR | — | — | after %d attempt(s): %v |\n",
				res.Key.N, res.Key.Scheme, res.Key.Rate, dcol, res.Attempts, res.Err)
			return
		}
		if res.Restored {
			restored++
		}
		fmt.Fprintln(w, sweepRow(res.Cell, withDelay))
	})
	var gridFail *mpic.GridFailure
	if err != nil && !errors.As(err, &gridFail) {
		return err
	}
	fmt.Fprintln(w)
	if restored > 0 {
		fmt.Fprintf(w, "*restored %d of %d cells from %s*\n", restored, len(grid.Cells), f.checkpoint)
	}
	if failed > 0 {
		fmt.Fprintf(w, "*quarantined %d of %d cells; they are not checkpointed and will re-run on resume*\n", failed, len(grid.Cells))
	}
	return err
}

// sweepRow formats one completed cell as a markdown table row; withDelay
// inserts the delay-axis column after the rate.
func sweepRow(c mpic.SweepCell, withDelay bool) string {
	cols := []string{
		fmt.Sprint(c.N),
		c.Scheme.String(),
		fmt.Sprintf("%g", c.Rate),
	}
	if withDelay {
		d := c.Delay
		if d == "" {
			d = "unit"
		}
		cols = append(cols, d)
	}
	cols = append(cols,
		fmt.Sprintf("%d/%d", c.Successes, c.Trials),
		fmt.Sprintf("%.1f", c.MeanBlowup()),
		fmt.Sprintf("%.0f", c.MeanIterations()),
		fmt.Sprint(c.Corruptions),
	)
	return "| " + strings.Join(cols, " | ") + " |"
}
