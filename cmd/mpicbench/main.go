// Command mpicbench regenerates the paper's evaluation artefacts: the
// Table 1 comparison and the figure-style experiments of DESIGN.md §4,
// printed as markdown tables (the source material of EXPERIMENTS.md).
//
// Example:
//
//	mpicbench -experiment table1
//	mpicbench -experiment all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpic/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpicbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpicbench", flag.ContinueOnError)
	var (
		name   = fs.String("experiment", "all", "experiment name or 'all': "+strings.Join(experiments.Names(), ", "))
		trials = fs.Int("trials", 10, "trials per measured cell")
		seed   = fs.Int64("seed", 1, "base random seed")
		quick  = fs.Bool("quick", false, "smaller sizes and trial counts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, Quick: *quick}
	if *name == "all" {
		tables, err := experiments.RunAll(cfg)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t.Markdown())
		}
		return nil
	}
	t, err := experiments.Run(*name, cfg)
	if err != nil {
		return err
	}
	fmt.Println(t.Markdown())
	return nil
}
