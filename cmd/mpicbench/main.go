// Command mpicbench regenerates the paper's evaluation artefacts: the
// Table 1 comparison and the figure-style experiments of DESIGN.md §4,
// printed as markdown tables (the source material of EXPERIMENTS.md).
//
// Example:
//
//	mpicbench -experiment table1
//	mpicbench -experiment all -quick
//	mpicbench -experiment all -quick -json BENCH_PR1.json
//
// The -json flag additionally writes the tables as machine-readable JSON
// (experiment ID, title, header, rows, notes), so successive PRs can track
// the performance and fidelity trajectory by diffing artefact files
// instead of re-parsing markdown.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpic/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpicbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpicbench", flag.ContinueOnError)
	var (
		name     = fs.String("experiment", "all", "experiment name or 'all': "+strings.Join(experiments.Names(), ", "))
		trials   = fs.Int("trials", 10, "trials per measured cell")
		seed     = fs.Int64("seed", 1, "base random seed")
		quick    = fs.Bool("quick", false, "smaller sizes and trial counts")
		jsonPath = fs.String("json", "", "also write results as JSON to this file (e.g. BENCH_PR1.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, Quick: *quick}
	var tables []*experiments.Table
	if *name == "all" {
		all, err := experiments.RunAll(cfg)
		if err != nil {
			return err
		}
		tables = all
	} else {
		t, err := experiments.Run(*name, cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	for _, t := range tables {
		fmt.Println(t.Markdown())
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, tables); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
	}
	return nil
}

func writeJSON(path string, tables []*experiments.Table) error {
	data, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
