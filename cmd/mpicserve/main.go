// Command mpicserve is the grid execution service: a long-lived HTTP
// server that accepts grid specifications over JSON — the same fields
// the mpicbench -sweep-* flags take — runs each as a lease-sharded
// durable session under a data directory, and streams the engine's
// fine-grained progress over Server-Sent Events.
//
//	mpicserve -addr :8080 -data ./grids -workers 4
//
// Submit a grid and watch it run:
//
//	curl -s localhost:8080/sessions -d '{"n":"4,6","schemes":"A,B","rates":"0,0.002","trials":2}'
//	curl -s localhost:8080/sessions/<id>
//	curl -N localhost:8080/sessions/<id>/events
//	curl -s localhost:8080/sessions/<id>/result
//
// Sessions are content-addressed by their spec, so re-submitting an
// identical grid attaches to the existing session, and restarting the
// server over the same -data directory resumes every unfinished
// session from its checkpoint instead of starting over. On SIGINT or
// SIGTERM the server stops its workers gracefully: cell leases are
// released, completed cells stay durable, and the next start picks up
// exactly where this one left off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpic/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpicserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpicserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		dataDir  = fs.String("data", "", "session data directory (required); restarting over it resumes unfinished sessions")
		workers  = fs.Int("workers", 2, "lease-sharded workers per session")
		leaseTTL = fs.Duration("lease-ttl", 30*time.Second, "cell lease TTL: how long a crashed worker's cells stay out of rotation")
		retries  = fs.Int("retries", 0, "extra attempts per failed cell before it is quarantined")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", *workers)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", *retries)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	svc, err := service.New(service.Options{
		DataDir:  *dataDir,
		Workers:  *workers,
		LeaseTTL: *leaseTTL,
		Retries:  *retries,
		Logf:     logger.Printf,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("mpicserve: listening on %s (data %s, %d workers/session)", *addr, *dataDir, *workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed outright; still stop the workers cleanly.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(shutdownCtx)
		return err
	case <-ctx.Done():
	}

	// Graceful stop: close the HTTP surface first (SSE streams end when
	// the sessions' subscriber channels close), then the workers — they
	// release their leases on the way out, so nothing waits out a TTL on
	// the next start.
	logger.Printf("mpicserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("stopping workers: %w", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("mpicserve: stopped")
	return nil
}
