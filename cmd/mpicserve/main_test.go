package main

import (
	"strings"
	"testing"
)

// TestRunFlagValidation pins the flag surface: the data directory is
// mandatory and the numeric knobs reject nonsense before any listener
// or worker starts.
func TestRunFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"-data is required": {},
		"at least 1":        {"-data", t.TempDir(), "-workers", "0"},
		"non-negative":      {"-data", t.TempDir(), "-retries", "-1"},
	}
	for want, args := range cases {
		err := run(args)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("run(%v) = %v, want error containing %q", args, err, want)
		}
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
