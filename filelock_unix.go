//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package mpic

import (
	"os"
	"syscall"
)

// flockPath takes an exclusive advisory flock(2) lock on path, creating
// the file if needed, blocking until the lock is granted. The returned
// function releases it. flock locks are held by the open file
// description, so they exclude other processes as well as other stores
// in this one, and the kernel drops them automatically when the holder
// dies — a crashed worker never leaves a stale lock behind. The lock
// file itself is never unlinked: removing a locked file would let a
// later locker create a fresh inode under the same name while the
// blocked waiter acquires the orphaned one, and two holders would each
// own "the" lock.
func flockPath(path string) (func() error, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, &os.PathError{Op: "flock", Path: path, Err: err}
	}
	return f.Close, nil // closing the descriptor releases the lock
}
