package mpic

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mpic/internal/faults"
)

// TestChaosGridSoak is the capstone fault-tolerance pin (`make chaos`
// runs it under -race): the full registry-cartesian grid executes as a
// durable parallel session while everything that can go wrong does, on a
// deterministic seed-driven schedule —
//
//   - the session store injects Save/Load errors and tears checkpoint
//     files mid-JSON after "successful" writes (absorbed by
//     RetryingGridStore and FileGridStore's last-good-state recovery),
//   - a fault plan makes a fraction of the cells panic mid-run on their
//     leading attempts (absorbed by the engine's panic recovery and
//     Grid.Retry),
//   - the first pass is cancelled mid-flight and the primary checkpoint
//     corrupted behind its back (absorbed by .bak recovery on resume).
//
// Despite all of it, the finished grid must be bit-identical to a clean
// sequential run — the repo's core determinism contract extended to the
// failure domain.
func TestChaosGridSoak(t *testing.T) {
	cells, labels, _ := cartesianCells(t)
	runner := NewRunner()
	defer runner.Close()

	// Clean sequential baseline: no store, no faults, one worker.
	want, err := runner.CollectGrid(context.Background(), Grid{Cells: cells, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The faulty session store: FileGridStore at the bottom, deterministic
	// fault injection in the middle, bounded retries on top. Torn writes
	// truncate the checkpoint mid-JSON — the exact shape a crash during a
	// non-atomic write would leave.
	path := filepath.Join(t.TempDir(), "chaos.json")
	inner := NewFileGridStore(path)
	var recoveries []error
	inner.OnRecovery = func(reason error) { recoveries = append(recoveries, reason) }
	faulty := faults.NewFaultyStore[StoredCell](inner, faults.StoreFaults{
		Seed:          42,
		SaveErrorRate: 0.2,
		LoadErrorRate: 0.2,
		TornRate:      0.15,
	})
	faulty.Tear = func() error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, data[:len(data)/2], 0o644)
	}
	store := &RetryingGridStore{Inner: faulty, MaxAttempts: 8, Sleep: func(time.Duration) {}}

	// The cell fault plan: roughly a third of the cells panic mid-run on
	// up to two leading attempts — always fewer than the retry budget, so
	// every cell eventually completes.
	plan := faults.CellPlan{Seed: 99, PanicRate: 0.35, MaxPanics: 2}
	afflicted := 0
	for i := range cells {
		if plan.Panics(i) > 0 {
			afflicted++
		}
	}
	if afflicted == 0 {
		t.Fatal("fault plan afflicts no cells; the soak would prove nothing")
	}
	// Fault agents are stateful (they count down their panic budget), so
	// every pass gets a fresh grid with fresh agents.
	makeGrid := func() Grid {
		cc := make([]GridCell, len(cells))
		for i, c := range cells {
			sc := c.Scenario
			sc.Observers = append(append([]Observer(nil), sc.Observers...), plan.Observer(i))
			c.Scenario = sc
			cc[i] = c
		}
		return Grid{
			Cells: cc, Workers: 4,
			Store: store, Spec: "chaos-soak",
			Retry: RetryPolicy{MaxAttempts: 3, JitterSeed: 7, Sleep: func(time.Duration) {}},
		}
	}

	// Pass 1: cancel mid-flight, a third of the way through.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamed := 0
	err = runner.RunGrid(ctx, makeGrid(), func(GridCellResult) {
		streamed++
		if streamed == len(cells)/3 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("cancelled pass reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pass returned %v, want a context.Canceled-derived error", err)
	}

	// Corrupt the primary checkpoint behind the session's back — the
	// crash-after-torn-write scenario. Resume must fall back to the .bak
	// last good state, not abort and not silently restart from zero.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(inner.BackupPath()); err != nil {
		t.Fatalf("no backup to recover from after %d saves: %v", streamed, err)
	}

	// Pass 2: run to completion under the same fault schedule.
	got, err := runner.CollectGrid(context.Background(), makeGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(recoveries) == 0 {
		t.Error("torn primary did not trigger last-good-state recovery")
	}
	restored := 0
	for i := range want {
		if got[i].Restored {
			restored++
		}
		if got[i].Err != nil {
			t.Fatalf("%s: cell failed despite retry budget: %v", labels[i], got[i].Err)
		}
		if !reflect.DeepEqual(got[i].Cell, want[i].Cell) {
			t.Errorf("%s: chaos run diverged from clean sequential run:\n got %+v\nwant %+v",
				labels[i], got[i].Cell, want[i].Cell)
		}
	}
	if restored == 0 {
		t.Error("resume restored nothing; the session store never held good state")
	}
	if restored == len(want) {
		t.Error("resume restored everything; the corruption wound back no cells")
	}

	// The schedule must actually have injected faults in every stream —
	// otherwise the soak silently stopped soaking.
	st := faulty.Stats()
	if st.SaveErrors == 0 || st.Tears == 0 {
		t.Errorf("store fault schedule injected nothing: %+v", st)
	}
	t.Logf("chaos soak: %d cells (%d afflicted by panics), %d restored on resume, %d store recoveries, store stats %+v",
		len(cells), afflicted, restored, len(recoveries), st)
}

// TestChaosNetworkSoak extends the chaos contract to the virtual-time
// network (`make chaos` runs it under -race): a grid whose every cell
// runs on the DES path — jitter, lognormal, and banded delay models,
// with link outages, delay spikes, a straggler party, and one
// crash-restart layered on top — executes as a durable parallel session
// against a fault-injecting store, is cancelled mid-flight, and resumes.
// The finished grid must be bit-identical to a clean sequential run,
// per-trial virtual-time metrics included: timing faults are seed-pure
// noise, not nondeterminism.
func TestChaosNetworkSoak(t *testing.T) {
	schedule := &NetFaults{
		OutageRate: 0.01, SpikeRate: 0.05,
		Stragglers: 1, Crashes: 1, CrashLen: 15,
	}
	var cells []GridCell
	for _, n := range []int{4, 5} {
		for _, d := range []DelaySpec{JitterDelay(0.8), LognormalDelay(0.3), BandedDelay(0.25)} {
			cells = append(cells, GridCell{
				Scenario: Scenario{
					Topology: Clique(n), Workload: RandomTraffic(40),
					Noise: RandomNoise(0.002), Seed: 3, IterFactor: 12,
					Delay: d, Faults: schedule,
				},
				Trials: 2, SeedStep: 100,
			})
		}
	}
	runner := NewRunner()
	defer runner.Close()

	// Clean sequential baseline, trials kept for per-trial comparison.
	want, err := runner.CollectGrid(context.Background(), Grid{Cells: cells, Workers: 1, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "netchaos.json")
	inner := NewFileGridStore(path)
	faulty := faults.NewFaultyStore[StoredCell](inner, faults.StoreFaults{
		Seed: 17, SaveErrorRate: 0.2, LoadErrorRate: 0.2,
	})
	store := &RetryingGridStore{Inner: faulty, MaxAttempts: 8, Sleep: func(time.Duration) {}}
	makeGrid := func() Grid {
		return Grid{
			Cells: cells, Workers: 4, KeepResults: true,
			Store: store, Spec: "net-chaos-soak",
		}
	}

	// Pass 1: cancel a third of the way through.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamed := 0
	err = runner.RunGrid(ctx, makeGrid(), func(GridCellResult) {
		streamed++
		if streamed == len(cells)/3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pass returned %v, want a context.Canceled-derived error", err)
	}

	// Pass 2: resume to completion and compare bit for bit.
	got, err := runner.CollectGrid(context.Background(), makeGrid())
	if err != nil {
		t.Fatal(err)
	}
	restored := 0
	var late, erasures int64
	for i := range want {
		if got[i].Restored {
			restored++
		}
		if !reflect.DeepEqual(got[i].Cell, want[i].Cell) {
			t.Errorf("cell %d (delay %q) diverged from clean sequential run:\n got %+v\nwant %+v",
				i, got[i].Key.Delay, got[i].Cell, want[i].Cell)
		}
		if len(got[i].Results) != len(want[i].Results) {
			t.Fatalf("cell %d kept %d trials, want %d", i, len(got[i].Results), len(want[i].Results))
		}
		for j := range got[i].Results {
			gm, wm := got[i].Results[j].Metrics, want[i].Results[j].Metrics
			if !reflect.DeepEqual(gm, wm) {
				t.Errorf("cell %d trial %d metrics diverged (restored=%v):\n got %+v\nwant %+v",
					i, j, got[i].Restored, gm, wm)
			}
			if gm.Net == nil {
				t.Fatalf("cell %d trial %d has no virtual-time metrics", i, j)
			}
			late += gm.Net.LateSymbols
			erasures += gm.Net.Erasures
		}
	}
	if restored == 0 {
		t.Error("resume restored nothing; the session never held good state")
	}
	if late == 0 || erasures == 0 {
		t.Errorf("the fault schedule never bit: %d late symbols, %d erasures — the soak stopped soaking", late, erasures)
	}
	if st := faulty.Stats(); st.SaveErrors == 0 && st.LoadErrors == 0 {
		t.Errorf("store fault schedule injected nothing: %+v", st)
	}
	t.Logf("network chaos soak: %d cells, %d restored, %d late symbols, %d erasures", len(cells), restored, late, erasures)
}

// shardSoakCells is the deterministic work-list the sharded service
// soak shares between the parent test and its victim subprocess: DES
// delay models with a fault schedule, two seeds per shape, expensive
// enough that a SIGKILL lands mid-grid.
func shardSoakCells() []GridCell {
	schedule := &NetFaults{OutageRate: 0.01, SpikeRate: 0.05, Stragglers: 1}
	var cells []GridCell
	for _, n := range []int{4, 5} {
		for _, d := range []DelaySpec{JitterDelay(0.8), LognormalDelay(0.3), BandedDelay(0.25)} {
			for _, seed := range []int64{3, 9} {
				cells = append(cells, GridCell{
					Scenario: Scenario{
						Topology: Clique(n), Workload: RandomTraffic(40),
						Noise: RandomNoise(0.002), Seed: seed, IterFactor: 12,
						Delay: d, Faults: schedule,
					},
					Trials: 2, SeedStep: 100,
				})
			}
		}
	}
	return cells
}

// shardSoakSpec names the shared session; an explicit spec keeps the
// parent and the subprocess honest about running the same grid.
const shardSoakSpec = "chaos-shard-soak"

// iterationSleeper slows a run down without touching its results —
// observers only watch — so the victim subprocess is guaranteed to be
// mid-cell when the parent kills it.
type iterationSleeper struct{ d time.Duration }

func (s iterationSleeper) IterationDone(IterationStats) { time.Sleep(s.d) }

// TestChaosShardHelper is not a test of its own: it is the victim
// worker process of TestChaosShardedServiceSoak, re-executed from the
// test binary with the session directory in the environment. It leases
// cells from the shared session — deliberately slowed — until the
// parent SIGKILLs it, leaving orphaned leases and a half-finished grid
// behind. Without the environment variable it skips immediately.
func TestChaosShardHelper(t *testing.T) {
	dir := os.Getenv("MPIC_CHAOS_SHARD_DIR")
	if dir == "" {
		t.Skip("helper process for TestChaosShardedServiceSoak")
	}
	cells := shardSoakCells()
	for i := range cells {
		sc := cells[i].Scenario
		sc.Observers = append(append([]Observer(nil), sc.Observers...), iterationSleeper{2 * time.Millisecond})
		cells[i].Scenario = sc
	}
	runner := NewRunner()
	defer runner.Close()
	store := NewDirLeaseStore(dir)
	err := runner.RunGridSharded(context.Background(), Grid{Cells: cells, Spec: shardSoakSpec, KeepResults: true}, store,
		ShardOptions{Worker: "victim", LeaseTTL: 2 * time.Second, Poll: 50 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosShardedServiceSoak is the sharded-service capstone pin
// (`make chaos` runs it under -race): a real second OS process leases
// cells from a shared session directory and is SIGKILLed mid-cell — no
// deferred release, no flush, exactly what a crashed service worker
// leaves behind — after which two in-process workers, themselves
// afflicted by a panic fault plan, must wait out the orphaned leases,
// reclaim the dead worker's cells, and finish the grid. The merged
// session must be bit-identical to a clean sequential run, per-trial
// metrics included.
func TestChaosShardedServiceSoak(t *testing.T) {
	cells := shardSoakCells()
	runner := NewRunner()
	defer runner.Close()

	// Clean sequential baseline.
	want, err := runner.CollectGrid(context.Background(), Grid{Cells: cells, Workers: 1, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store := NewDirLeaseStore(dir)

	// The victim: this test binary re-executed as a lone worker on the
	// shared session, slowed so the kill lands mid-cell.
	victim := exec.Command(os.Args[0], "-test.run=^TestChaosShardHelper$")
	victim.Env = append(os.Environ(), "MPIC_CHAOS_SHARD_DIR="+dir)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	defer victim.Process.Kill()

	// Kill as soon as the first completed cell lands — abrupt, with
	// leases still held.
	deadline := time.Now().Add(60 * time.Second)
	for {
		saved, err := store.Load(shardSoakSpec)
		if err == nil && len(saved) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim worker saved nothing within 60s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait()

	saved, err := store.Load(shardSoakSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) == len(cells) {
		t.Fatal("victim finished the whole grid before the kill; the soak proved nothing")
	}
	orphaned, err := store.Leases(shardSoakSpec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("killed victim after %d/%d cells, %d orphaned lease(s)", len(saved), len(cells), len(orphaned))

	// The survivors: two in-process workers under a panic fault plan —
	// the PR 6 retry machinery must keep absorbing failures on the
	// sharded path too. They must wait out the victim's leases (TTL 2s)
	// before reclaiming its cells.
	plan := faults.CellPlan{Seed: 99, PanicRate: 0.35, MaxPanics: 2}
	workerGrid := func() Grid {
		cc := make([]GridCell, len(cells))
		for i, c := range cells {
			sc := c.Scenario
			sc.Observers = append(append([]Observer(nil), sc.Observers...), plan.Observer(i))
			c.Scenario = sc
			cc[i] = c
		}
		return Grid{
			Cells: cc, Spec: shardSoakSpec, KeepResults: true,
			Retry: RetryPolicy{MaxAttempts: 3, JitterSeed: 7, Sleep: func(time.Duration) {}},
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := range errs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = runner.RunGridSharded(context.Background(), workerGrid(), store,
				ShardOptions{Worker: fmt.Sprintf("survivor-%d", w), LeaseTTL: 2 * time.Second, Poll: 50 * time.Millisecond}, nil)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("survivor %d: %v", w, err)
		}
	}

	// Merge check: the ordinary engine restores the whole session, and
	// every cell — the victim's, the reclaimed, the survivors' — is
	// bit-identical to the clean sequential run.
	got, err := runner.CollectGrid(context.Background(), Grid{
		Cells: cells, Spec: shardSoakSpec, Store: store, KeepResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !got[i].Restored {
			t.Errorf("cell %d missing from the merged session", i)
		}
		if !reflect.DeepEqual(got[i].Cell, want[i].Cell) {
			t.Errorf("cell %d diverged from clean sequential run:\n got %+v\nwant %+v", i, got[i].Cell, want[i].Cell)
		}
		if len(got[i].Results) != len(want[i].Results) {
			t.Fatalf("cell %d kept %d trials, want %d", i, len(got[i].Results), len(want[i].Results))
		}
		for j := range got[i].Results {
			if !reflect.DeepEqual(got[i].Results[j].Metrics, want[i].Results[j].Metrics) {
				t.Errorf("cell %d trial %d metrics diverged", i, j)
			}
		}
	}
	leases, err := store.Leases(shardSoakSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 0 {
		t.Errorf("finished session still holds leases: %+v", leases)
	}
	t.Logf("sharded soak: %d cells, victim completed %d before SIGKILL, survivors finished the rest", len(cells), len(saved))
}
